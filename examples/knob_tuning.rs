//! Sweep the analytical model's TCO/performance knob α across a workload
//! and print the achievable frontier (the paper's Figure 5/10 idea).
//!
//! ```sh
//! cargo run --release --example knob_tuning [workload]
//! ```
//!
//! `workload` is any Table 2 name (default `memcached-ycsb`), e.g.
//! `pagerank`, `xsbench`, `redis-ycsb`.

use tierscape::core::prelude::*;
use tierscape::sim::{Fidelity, SimConfig, TieredSystem};
use tierscape::workloads::{Scale, WorkloadId};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "memcached-ycsb".to_string());
    let id = WorkloadId::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload '{name}'; options:");
            for w in WorkloadId::ALL {
                eprintln!("  {}", w.name());
            }
            std::process::exit(2);
        });

    println!("knob sweep on {} (standard mix of tiers)\n", id.name());
    println!("alpha  tco_savings%  slowdown%  p95_us");
    for alpha in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let workload = id.build(Scale(1.0 / 1024.0), 42);
        let rss = workload.rss_bytes();
        let cfg = SimConfig::standard_mix(rss, Fidelity::Modeled, 42).with_compute_ns(200.0);
        let mut system = TieredSystem::new(cfg, workload).expect("valid standard mix");
        let mut policy = AnalyticalModel::new(alpha);
        let cfg = DaemonConfig {
            windows: 8,
            window_accesses: 100_000,
            ..DaemonConfig::default()
        };
        let report = run_daemon(&mut system, &mut policy, &cfg);
        println!(
            "{alpha:<5}  {:>11.1}  {:>8.1}  {:>7.2}",
            report.tco_savings() * 100.0,
            report.slowdown() * 100.0,
            report.perf.p95_ns / 1000.0
        );
    }
    println!("\nalpha=1 pins everything in DRAM (no savings, no slowdown);");
    println!("alpha=0 chases TCO_min while the ILP minimizes the perf penalty.");
}
